// Experiment E1 — Theorem 1.
//
// "Starting from an arbitrary state, the algorithm SMM stabilizes and
//  produces a maximal matching in at most n+1 rounds."
//
// We sweep graph families x sizes x ID orders, run SMM from many random
// type-correct configurations (plus the clean all-null start), record the
// worst observed round count, and check it against n+1. Small instances are
// additionally verified *exhaustively* over their entire configuration
// space, giving exact worst cases.
#include <algorithm>
#include <iostream>

#include "analysis/verifiers.hpp"
#include "bench/support/families.hpp"
#include "bench/support/table.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner("E1: SMM stabilization rounds vs n (Theorem 1)",
                "SMM stabilizes to a maximal matching in at most n+1 rounds "
                "from any configuration");

  bool allOk = true;

  // Part 1: randomized sweep over families and sizes.
  {
    Table table({"family", "n", "m", "trials", "worst", "mean", "bound n+1",
                 "maximal"});
    graph::Rng rng(0xE1);
    constexpr int kTrialsPerOrder = 20;
    const core::SmmProtocol smm = core::smmPaper();

    for (const auto& family : bench::standardFamilies()) {
      for (const std::size_t n : {16u, 32u, 64u, 128u}) {
        const Graph g = family.make(n, rng);
        std::size_t worst = 0;
        double sum = 0;
        std::size_t trials = 0;
        bool maximalAlways = true;

        for (const auto& order : bench::standardIdOrders()) {
          const IdAssignment ids = order.make(g.order(), rng);
          for (int t = 0; t < kTrialsPerOrder; ++t) {
            auto states =
                t == 0 ? std::vector<PointerState>(g.order())
                       : engine::randomConfiguration<PointerState>(
                             g, rng, core::randomPointerState);
            SyncRunner<PointerState> runner(smm, g, ids);
            const auto result = runner.run(states, g.order() + 2);
            allOk &= result.stabilized;
            allOk &= result.rounds <= g.order() + 1;
            maximalAlways &= analysis::checkMatchingFixpoint(g, states).ok();
            worst = std::max(worst, result.rounds);
            sum += static_cast<double>(result.rounds);
            ++trials;
          }
        }
        allOk &= maximalAlways;
        table.addRow(family.name, g.order(), g.size(), trials, worst,
                     sum / static_cast<double>(trials), g.order() + 1,
                     maximalAlways ? "yes" : "NO");
      }
    }
    table.print();
    std::cout << '\n';
  }

  // Part 2: exact worst case by exhaustive enumeration on small instances.
  {
    std::cout << "Exact worst case over the FULL configuration space "
                 "(exhaustive):\n";
    Table table({"graph", "n", "configs", "worst rounds", "bound n+1"});
    const core::SmmProtocol smm = core::smmPaper();
    struct Instance {
      std::string name;
      Graph g;
    };
    const std::vector<Instance> instances{
        {"path(5)", graph::path(5)},       {"path(6)", graph::path(6)},
        {"cycle(5)", graph::cycle(5)},     {"cycle(6)", graph::cycle(6)},
        {"complete(4)", graph::complete(4)},
        {"star(6)", graph::star(6)},       {"K(2,3)", graph::completeBipartite(2, 3)},
        {"grid(2x3)", graph::grid(2, 3)},
    };
    for (const auto& [name, g] : instances) {
      const IdAssignment ids = IdAssignment::identity(g.order());
      std::vector<std::vector<PointerState>> candidates(g.order());
      for (graph::Vertex v = 0; v < g.order(); ++v) {
        candidates[v].push_back(PointerState{});
        for (const graph::Vertex w : g.neighbors(v)) {
          candidates[v].push_back(PointerState{w});
        }
      }
      std::size_t worst = 0;
      std::size_t configs = 0;
      engine::enumerateConfigurations(
          candidates, [&](const std::vector<PointerState>& start) {
            SyncRunner<PointerState> runner(smm, g, ids);
            auto states = start;
            const auto result = runner.run(states, g.order() + 2);
            allOk &= result.stabilized && result.rounds <= g.order() + 1;
            allOk &= analysis::checkMatchingFixpoint(g, states).ok();
            worst = std::max(worst, result.rounds);
            ++configs;
          });
      table.addRow(name, g.order(), configs, worst, g.order() + 1);
    }
    table.print();
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "every run stabilized within n+1 rounds to a maximal "
                 "matching (Theorem 1 + Lemma 8)");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
