file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/test_baselines.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_baselines.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_node_types.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_node_types.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_stats.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_stats.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_trace.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_trace.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_transitions.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_transitions.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/test_verifiers.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/test_verifiers.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
