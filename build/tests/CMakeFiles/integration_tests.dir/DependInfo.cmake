
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_beacon_vs_abstract.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_beacon_vs_abstract.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_beacon_vs_abstract.cpp.o.d"
  "/root/repo/tests/integration/test_differential.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_differential.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_differential.cpp.o.d"
  "/root/repo/tests/integration/test_exhaustive_graphs.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_exhaustive_graphs.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_exhaustive_graphs.cpp.o.d"
  "/root/repo/tests/integration/test_fault_recovery.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_fault_recovery.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_fault_recovery.cpp.o.d"
  "/root/repo/tests/integration/test_paper_theorems.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_paper_theorems.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_paper_theorems.cpp.o.d"
  "/root/repo/tests/integration/test_soak.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_soak.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_soak.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/selfstab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/selfstab_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/selfstab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/selfstab_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/adhoc/CMakeFiles/selfstab_adhoc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
