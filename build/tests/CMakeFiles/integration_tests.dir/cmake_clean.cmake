file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/test_beacon_vs_abstract.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_beacon_vs_abstract.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/test_differential.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_differential.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/test_exhaustive_graphs.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_exhaustive_graphs.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/test_fault_recovery.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_fault_recovery.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/test_paper_theorems.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_paper_theorems.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/test_soak.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/test_soak.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
