
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_aggregation.cpp" "tests/CMakeFiles/core_tests.dir/core/test_aggregation.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_aggregation.cpp.o.d"
  "/root/repo/tests/core/test_bfs_tree.cpp" "tests/CMakeFiles/core_tests.dir/core/test_bfs_tree.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_bfs_tree.cpp.o.d"
  "/root/repo/tests/core/test_coloring.cpp" "tests/CMakeFiles/core_tests.dir/core/test_coloring.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_coloring.cpp.o.d"
  "/root/repo/tests/core/test_dominating_set.cpp" "tests/CMakeFiles/core_tests.dir/core/test_dominating_set.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_dominating_set.cpp.o.d"
  "/root/repo/tests/core/test_hsu_huang.cpp" "tests/CMakeFiles/core_tests.dir/core/test_hsu_huang.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_hsu_huang.cpp.o.d"
  "/root/repo/tests/core/test_leader_tree.cpp" "tests/CMakeFiles/core_tests.dir/core/test_leader_tree.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_leader_tree.cpp.o.d"
  "/root/repo/tests/core/test_local_mutex.cpp" "tests/CMakeFiles/core_tests.dir/core/test_local_mutex.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_local_mutex.cpp.o.d"
  "/root/repo/tests/core/test_sis.cpp" "tests/CMakeFiles/core_tests.dir/core/test_sis.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_sis.cpp.o.d"
  "/root/repo/tests/core/test_smm_convergence.cpp" "tests/CMakeFiles/core_tests.dir/core/test_smm_convergence.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_smm_convergence.cpp.o.d"
  "/root/repo/tests/core/test_smm_properties.cpp" "tests/CMakeFiles/core_tests.dir/core/test_smm_properties.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_smm_properties.cpp.o.d"
  "/root/repo/tests/core/test_smm_rules.cpp" "tests/CMakeFiles/core_tests.dir/core/test_smm_rules.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_smm_rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/selfstab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/selfstab_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/selfstab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/selfstab_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/adhoc/CMakeFiles/selfstab_adhoc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
