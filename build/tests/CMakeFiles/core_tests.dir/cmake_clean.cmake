file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/test_aggregation.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_aggregation.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_bfs_tree.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_bfs_tree.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_coloring.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_coloring.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_dominating_set.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_dominating_set.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_hsu_huang.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_hsu_huang.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_leader_tree.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_leader_tree.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_local_mutex.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_local_mutex.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_sis.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_sis.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_smm_convergence.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_smm_convergence.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_smm_properties.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_smm_properties.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_smm_rules.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_smm_rules.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
