file(REMOVE_RECURSE
  "CMakeFiles/telemetry_tests.dir/telemetry/test_event_log.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/test_event_log.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry/test_executor_parity.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/test_executor_parity.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry/test_json.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/test_json.cpp.o.d"
  "CMakeFiles/telemetry_tests.dir/telemetry/test_metrics.cpp.o"
  "CMakeFiles/telemetry_tests.dir/telemetry/test_metrics.cpp.o.d"
  "telemetry_tests"
  "telemetry_tests.pdb"
  "telemetry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
