
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/telemetry/test_event_log.cpp" "tests/CMakeFiles/telemetry_tests.dir/telemetry/test_event_log.cpp.o" "gcc" "tests/CMakeFiles/telemetry_tests.dir/telemetry/test_event_log.cpp.o.d"
  "/root/repo/tests/telemetry/test_executor_parity.cpp" "tests/CMakeFiles/telemetry_tests.dir/telemetry/test_executor_parity.cpp.o" "gcc" "tests/CMakeFiles/telemetry_tests.dir/telemetry/test_executor_parity.cpp.o.d"
  "/root/repo/tests/telemetry/test_json.cpp" "tests/CMakeFiles/telemetry_tests.dir/telemetry/test_json.cpp.o" "gcc" "tests/CMakeFiles/telemetry_tests.dir/telemetry/test_json.cpp.o.d"
  "/root/repo/tests/telemetry/test_metrics.cpp" "tests/CMakeFiles/telemetry_tests.dir/telemetry/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/telemetry_tests.dir/telemetry/test_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/selfstab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/selfstab_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/selfstab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/selfstab_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/adhoc/CMakeFiles/selfstab_adhoc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
