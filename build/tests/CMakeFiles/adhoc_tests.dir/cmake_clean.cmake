file(REMOVE_RECURSE
  "CMakeFiles/adhoc_tests.dir/adhoc/test_event_queue.cpp.o"
  "CMakeFiles/adhoc_tests.dir/adhoc/test_event_queue.cpp.o.d"
  "CMakeFiles/adhoc_tests.dir/adhoc/test_mobility.cpp.o"
  "CMakeFiles/adhoc_tests.dir/adhoc/test_mobility.cpp.o.d"
  "CMakeFiles/adhoc_tests.dir/adhoc/test_network.cpp.o"
  "CMakeFiles/adhoc_tests.dir/adhoc/test_network.cpp.o.d"
  "adhoc_tests"
  "adhoc_tests.pdb"
  "adhoc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
