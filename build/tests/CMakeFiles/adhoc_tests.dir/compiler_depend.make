# Empty compiler generated dependencies file for adhoc_tests.
# This may be replaced when dependencies are built.
