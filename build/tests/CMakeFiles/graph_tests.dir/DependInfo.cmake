
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/test_algorithms.cpp" "tests/CMakeFiles/graph_tests.dir/graph/test_algorithms.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_algorithms.cpp.o.d"
  "/root/repo/tests/graph/test_generators.cpp" "tests/CMakeFiles/graph_tests.dir/graph/test_generators.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_generators.cpp.o.d"
  "/root/repo/tests/graph/test_geometry.cpp" "tests/CMakeFiles/graph_tests.dir/graph/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_geometry.cpp.o.d"
  "/root/repo/tests/graph/test_graph.cpp" "tests/CMakeFiles/graph_tests.dir/graph/test_graph.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_graph.cpp.o.d"
  "/root/repo/tests/graph/test_id_order.cpp" "tests/CMakeFiles/graph_tests.dir/graph/test_id_order.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_id_order.cpp.o.d"
  "/root/repo/tests/graph/test_io.cpp" "tests/CMakeFiles/graph_tests.dir/graph/test_io.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_io.cpp.o.d"
  "/root/repo/tests/graph/test_rng.cpp" "tests/CMakeFiles/graph_tests.dir/graph/test_rng.cpp.o" "gcc" "tests/CMakeFiles/graph_tests.dir/graph/test_rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/selfstab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/selfstab_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/selfstab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/selfstab_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/adhoc/CMakeFiles/selfstab_adhoc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
