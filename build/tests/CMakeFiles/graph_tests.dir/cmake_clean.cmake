file(REMOVE_RECURSE
  "CMakeFiles/graph_tests.dir/graph/test_algorithms.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/test_algorithms.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_generators.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/test_generators.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_geometry.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/test_geometry.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_graph.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/test_graph.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_id_order.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/test_id_order.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_io.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/test_io.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/test_rng.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/test_rng.cpp.o.d"
  "graph_tests"
  "graph_tests.pdb"
  "graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
