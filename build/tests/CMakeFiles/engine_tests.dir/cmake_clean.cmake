file(REMOVE_RECURSE
  "CMakeFiles/engine_tests.dir/engine/test_cycle_detection.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/test_cycle_detection.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/test_daemons.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/test_daemons.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/test_fault.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/test_fault.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/test_parallel_runner.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/test_parallel_runner.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/test_replay.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/test_replay.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/test_sync_runner.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/test_sync_runner.cpp.o.d"
  "CMakeFiles/engine_tests.dir/engine/test_view_builder.cpp.o"
  "CMakeFiles/engine_tests.dir/engine/test_view_builder.cpp.o.d"
  "engine_tests"
  "engine_tests.pdb"
  "engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
