# Empty compiler generated dependencies file for exp_fault_tolerance.
# This may be replaced when dependencies are built.
