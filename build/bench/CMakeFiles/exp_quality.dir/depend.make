# Empty dependencies file for exp_quality.
# This may be replaced when dependencies are built.
