file(REMOVE_RECURSE
  "CMakeFiles/exp_quality.dir/exp_quality.cpp.o"
  "CMakeFiles/exp_quality.dir/exp_quality.cpp.o.d"
  "exp_quality"
  "exp_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
