file(REMOVE_RECURSE
  "CMakeFiles/exp_beacon_model.dir/exp_beacon_model.cpp.o"
  "CMakeFiles/exp_beacon_model.dir/exp_beacon_model.cpp.o.d"
  "exp_beacon_model"
  "exp_beacon_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_beacon_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
