# Empty compiler generated dependencies file for exp_beacon_model.
# This may be replaced when dependencies are built.
