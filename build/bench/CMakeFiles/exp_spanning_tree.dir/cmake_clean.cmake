file(REMOVE_RECURSE
  "CMakeFiles/exp_spanning_tree.dir/exp_spanning_tree.cpp.o"
  "CMakeFiles/exp_spanning_tree.dir/exp_spanning_tree.cpp.o.d"
  "exp_spanning_tree"
  "exp_spanning_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_spanning_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
