# Empty dependencies file for exp_spanning_tree.
# This may be replaced when dependencies are built.
