file(REMOVE_RECURSE
  "CMakeFiles/exp_sis_rounds.dir/exp_sis_rounds.cpp.o"
  "CMakeFiles/exp_sis_rounds.dir/exp_sis_rounds.cpp.o.d"
  "exp_sis_rounds"
  "exp_sis_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sis_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
