# Empty compiler generated dependencies file for exp_sis_rounds.
# This may be replaced when dependencies are built.
