file(REMOVE_RECURSE
  "CMakeFiles/exp_matching_growth.dir/exp_matching_growth.cpp.o"
  "CMakeFiles/exp_matching_growth.dir/exp_matching_growth.cpp.o.d"
  "exp_matching_growth"
  "exp_matching_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_matching_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
