# Empty compiler generated dependencies file for exp_matching_growth.
# This may be replaced when dependencies are built.
