file(REMOVE_RECURSE
  "CMakeFiles/exp_counterexample.dir/exp_counterexample.cpp.o"
  "CMakeFiles/exp_counterexample.dir/exp_counterexample.cpp.o.d"
  "exp_counterexample"
  "exp_counterexample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
