# Empty dependencies file for exp_transition_census.
# This may be replaced when dependencies are built.
