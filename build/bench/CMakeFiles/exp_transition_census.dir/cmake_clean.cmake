file(REMOVE_RECURSE
  "CMakeFiles/exp_transition_census.dir/exp_transition_census.cpp.o"
  "CMakeFiles/exp_transition_census.dir/exp_transition_census.cpp.o.d"
  "exp_transition_census"
  "exp_transition_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_transition_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
