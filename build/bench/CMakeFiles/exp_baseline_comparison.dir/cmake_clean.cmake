file(REMOVE_RECURSE
  "CMakeFiles/exp_baseline_comparison.dir/exp_baseline_comparison.cpp.o"
  "CMakeFiles/exp_baseline_comparison.dir/exp_baseline_comparison.cpp.o.d"
  "exp_baseline_comparison"
  "exp_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
