file(REMOVE_RECURSE
  "CMakeFiles/micro_protocols.dir/micro_protocols.cpp.o"
  "CMakeFiles/micro_protocols.dir/micro_protocols.cpp.o.d"
  "micro_protocols"
  "micro_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
