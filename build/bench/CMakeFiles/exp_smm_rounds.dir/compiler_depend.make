# Empty compiler generated dependencies file for exp_smm_rounds.
# This may be replaced when dependencies are built.
