file(REMOVE_RECURSE
  "CMakeFiles/exp_smm_rounds.dir/exp_smm_rounds.cpp.o"
  "CMakeFiles/exp_smm_rounds.dir/exp_smm_rounds.cpp.o.d"
  "exp_smm_rounds"
  "exp_smm_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_smm_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
