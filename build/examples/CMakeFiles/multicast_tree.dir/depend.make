# Empty dependencies file for multicast_tree.
# This may be replaced when dependencies are built.
