file(REMOVE_RECURSE
  "CMakeFiles/multicast_tree.dir/multicast_tree.cpp.o"
  "CMakeFiles/multicast_tree.dir/multicast_tree.cpp.o.d"
  "multicast_tree"
  "multicast_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
