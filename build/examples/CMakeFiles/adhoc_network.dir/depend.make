# Empty dependencies file for adhoc_network.
# This may be replaced when dependencies are built.
