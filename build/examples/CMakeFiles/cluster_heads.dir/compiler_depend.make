# Empty compiler generated dependencies file for cluster_heads.
# This may be replaced when dependencies are built.
