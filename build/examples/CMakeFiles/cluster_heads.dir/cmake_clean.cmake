file(REMOVE_RECURSE
  "CMakeFiles/cluster_heads.dir/cluster_heads.cpp.o"
  "CMakeFiles/cluster_heads.dir/cluster_heads.cpp.o.d"
  "cluster_heads"
  "cluster_heads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_heads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
