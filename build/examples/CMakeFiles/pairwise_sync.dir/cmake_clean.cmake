file(REMOVE_RECURSE
  "CMakeFiles/pairwise_sync.dir/pairwise_sync.cpp.o"
  "CMakeFiles/pairwise_sync.dir/pairwise_sync.cpp.o.d"
  "pairwise_sync"
  "pairwise_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairwise_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
