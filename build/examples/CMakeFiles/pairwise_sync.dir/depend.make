# Empty dependencies file for pairwise_sync.
# This may be replaced when dependencies are built.
