# Empty compiler generated dependencies file for counterexample_walkthrough.
# This may be replaced when dependencies are built.
