file(REMOVE_RECURSE
  "CMakeFiles/counterexample_walkthrough.dir/counterexample_walkthrough.cpp.o"
  "CMakeFiles/counterexample_walkthrough.dir/counterexample_walkthrough.cpp.o.d"
  "counterexample_walkthrough"
  "counterexample_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterexample_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
