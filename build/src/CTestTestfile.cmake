# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("graph")
subdirs("telemetry")
subdirs("engine")
subdirs("core")
subdirs("analysis")
subdirs("adhoc")
subdirs("cli")
