file(REMOVE_RECURSE
  "libselfstab_adhoc.a"
)
