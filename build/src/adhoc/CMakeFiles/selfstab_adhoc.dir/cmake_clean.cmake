file(REMOVE_RECURSE
  "CMakeFiles/selfstab_adhoc.dir/mobility.cpp.o"
  "CMakeFiles/selfstab_adhoc.dir/mobility.cpp.o.d"
  "libselfstab_adhoc.a"
  "libselfstab_adhoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfstab_adhoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
