# Empty compiler generated dependencies file for selfstab_adhoc.
# This may be replaced when dependencies are built.
