# Empty dependencies file for selfstab.
# This may be replaced when dependencies are built.
