file(REMOVE_RECURSE
  "CMakeFiles/selfstab.dir/main.cpp.o"
  "CMakeFiles/selfstab.dir/main.cpp.o.d"
  "selfstab"
  "selfstab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfstab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
