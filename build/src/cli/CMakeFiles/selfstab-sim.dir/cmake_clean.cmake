file(REMOVE_RECURSE
  "CMakeFiles/selfstab-sim.dir/main_sim.cpp.o"
  "CMakeFiles/selfstab-sim.dir/main_sim.cpp.o.d"
  "selfstab-sim"
  "selfstab-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfstab-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
