# Empty dependencies file for selfstab-sim.
# This may be replaced when dependencies are built.
