# Empty dependencies file for selfstab_cli.
# This may be replaced when dependencies are built.
