file(REMOVE_RECURSE
  "CMakeFiles/selfstab_cli.dir/options.cpp.o"
  "CMakeFiles/selfstab_cli.dir/options.cpp.o.d"
  "CMakeFiles/selfstab_cli.dir/run.cpp.o"
  "CMakeFiles/selfstab_cli.dir/run.cpp.o.d"
  "CMakeFiles/selfstab_cli.dir/sim_options.cpp.o"
  "CMakeFiles/selfstab_cli.dir/sim_options.cpp.o.d"
  "CMakeFiles/selfstab_cli.dir/sim_run.cpp.o"
  "CMakeFiles/selfstab_cli.dir/sim_run.cpp.o.d"
  "libselfstab_cli.a"
  "libselfstab_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfstab_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
