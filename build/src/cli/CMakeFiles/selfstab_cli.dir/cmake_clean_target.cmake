file(REMOVE_RECURSE
  "libselfstab_cli.a"
)
