file(REMOVE_RECURSE
  "CMakeFiles/selfstab_graph.dir/algorithms.cpp.o"
  "CMakeFiles/selfstab_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/selfstab_graph.dir/generators.cpp.o"
  "CMakeFiles/selfstab_graph.dir/generators.cpp.o.d"
  "CMakeFiles/selfstab_graph.dir/geometry.cpp.o"
  "CMakeFiles/selfstab_graph.dir/geometry.cpp.o.d"
  "CMakeFiles/selfstab_graph.dir/graph.cpp.o"
  "CMakeFiles/selfstab_graph.dir/graph.cpp.o.d"
  "CMakeFiles/selfstab_graph.dir/id_order.cpp.o"
  "CMakeFiles/selfstab_graph.dir/id_order.cpp.o.d"
  "CMakeFiles/selfstab_graph.dir/io.cpp.o"
  "CMakeFiles/selfstab_graph.dir/io.cpp.o.d"
  "libselfstab_graph.a"
  "libselfstab_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfstab_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
