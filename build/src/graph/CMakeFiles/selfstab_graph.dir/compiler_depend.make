# Empty compiler generated dependencies file for selfstab_graph.
# This may be replaced when dependencies are built.
