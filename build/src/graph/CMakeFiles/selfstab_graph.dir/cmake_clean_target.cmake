file(REMOVE_RECURSE
  "libselfstab_graph.a"
)
