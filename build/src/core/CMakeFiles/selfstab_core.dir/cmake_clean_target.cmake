file(REMOVE_RECURSE
  "libselfstab_core.a"
)
