# Empty dependencies file for selfstab_core.
# This may be replaced when dependencies are built.
