file(REMOVE_RECURSE
  "CMakeFiles/selfstab_core.dir/smm.cpp.o"
  "CMakeFiles/selfstab_core.dir/smm.cpp.o.d"
  "libselfstab_core.a"
  "libselfstab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfstab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
