file(REMOVE_RECURSE
  "CMakeFiles/selfstab_engine.dir/fault.cpp.o"
  "CMakeFiles/selfstab_engine.dir/fault.cpp.o.d"
  "libselfstab_engine.a"
  "libselfstab_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfstab_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
