# Empty dependencies file for selfstab_engine.
# This may be replaced when dependencies are built.
