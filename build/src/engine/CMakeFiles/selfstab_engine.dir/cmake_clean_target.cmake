file(REMOVE_RECURSE
  "libselfstab_engine.a"
)
