# Empty dependencies file for selfstab_analysis.
# This may be replaced when dependencies are built.
