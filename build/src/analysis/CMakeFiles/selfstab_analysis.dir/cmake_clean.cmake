file(REMOVE_RECURSE
  "CMakeFiles/selfstab_analysis.dir/baselines.cpp.o"
  "CMakeFiles/selfstab_analysis.dir/baselines.cpp.o.d"
  "CMakeFiles/selfstab_analysis.dir/node_types.cpp.o"
  "CMakeFiles/selfstab_analysis.dir/node_types.cpp.o.d"
  "CMakeFiles/selfstab_analysis.dir/verifiers.cpp.o"
  "CMakeFiles/selfstab_analysis.dir/verifiers.cpp.o.d"
  "libselfstab_analysis.a"
  "libselfstab_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfstab_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
