file(REMOVE_RECURSE
  "libselfstab_analysis.a"
)
