#!/usr/bin/env sh
# Sub-minute perf smoke: runs only the micro_kernels acceptance gate (flat
# SIS evaluation >= 3x generic on power-law + geometric graphs, plus the
# recorded SMM speedup) at SELFSTAB_SMOKE scale, skipping all timed
# google-benchmark cases. Use it for a quick signal that a change did not
# destroy kernel throughput without paying for the full bench sweep.
#
#   scripts/bench_smoke.sh [build-dir]
#
# Honors SELFSTAB_BENCH_JSON if the caller wants the smoke-scale rows
# appended somewhere; leaves it unset otherwise so smoke numbers never
# pollute the committed BENCH_PR*.json files.
set -eu

BUILD_DIR="${1:-build}"
MICRO="$BUILD_DIR/bench/micro_kernels"

if [ ! -x "$MICRO" ]; then
  echo "bench_smoke.sh: $MICRO not built (build the bench targets first)" >&2
  exit 1
fi

# Gate-only: main() runs the hard gate and exits before the benchmark
# runner ever starts.
SELFSTAB_SMOKE=1 SELFSTAB_GATE_ONLY=1 "$MICRO"
