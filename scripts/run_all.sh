#!/usr/bin/env sh
# One-shot reproduction: configure, build, run the full test suite, then
# every experiment and microbenchmark, teeing outputs next to the sources.
#
#   scripts/run_all.sh [build-dir]
#
# Exit status is non-zero if the build, any test, or any experiment's
# reproduction gate fails.
set -eu

BUILD_DIR="${1:-build}"
ROOT="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -G Ninja -S "$ROOT"
cmake --build "$BUILD_DIR"

# The full suite includes the `stress` label (property-based differential
# and self-stabilization suites); SELFSTAB_STRESS_ITERS scales their
# iteration counts if set in the environment.
ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 \
  | tee "$ROOT/test_output.txt"

# Fast perf sanity before the expensive passes: the micro_kernels gate at
# smoke scale (<60s). A kernel-throughput regression fails here in seconds
# instead of at the end of the full bench sweep.
sh "$ROOT/scripts/bench_smoke.sh" "$BUILD_DIR"

# ThreadSanitizer pass over the concurrency-sensitive suites: the telemetry
# instruments (lock-free counters shared by the worker pool), the parallel
# runner itself, and the parallel active-set differential tests (per-worker
# dirty queues merged at the round barrier). A separate build dir keeps
# sanitizer objects out of the main build.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -G Ninja -S "$ROOT" -DSELFSTAB_SANITIZE=thread
cmake --build "$TSAN_DIR" --target telemetry_tests engine_tests stress_tests
{
  "$TSAN_DIR/tests/telemetry_tests"
  "$TSAN_DIR/tests/engine_tests" --gtest_filter='ParallelRunner.*'
  # '*Parallel*' picks up KernelDifferentialParallel too: the flat kernels'
  # shared CSR mirror and per-worker scratch run under the pool here.
  SELFSTAB_STRESS_ITERS="${SELFSTAB_TSAN_STRESS_ITERS:-3}" \
    "$TSAN_DIR/tests/stress_tests" --gtest_filter='*Parallel*'
  # Chaos soak under TSan: engine campaigns replay on the parallel runner
  # inside the serial-vs-parallel agreement path, so data races in the
  # fault-injection plumbing surface here.
  SELFSTAB_STRESS_ITERS="${SELFSTAB_TSAN_STRESS_ITERS:-3}" \
    "$TSAN_DIR/tests/stress_tests" --gtest_filter='ChaosSoak.*'
} 2>&1 | tee "$ROOT/tsan_output.txt"

# AddressSanitizer pass over the beacon-simulator suites: the spatial-index
# rework moves neighbor caches and event queues onto flat vectors with
# in-place compaction and move-out pops, exactly the kind of code ASan
# catches misusing. The grid-vs-scan differential tests double as the
# workload.
ASAN_DIR="${BUILD_DIR}-asan"
cmake -B "$ASAN_DIR" -G Ninja -S "$ROOT" -DSELFSTAB_SANITIZE=address
cmake --build "$ASAN_DIR" --target adhoc_tests stress_tests
{
  "$ASAN_DIR/tests/adhoc_tests"
  SELFSTAB_STRESS_ITERS="${SELFSTAB_ASAN_STRESS_ITERS:-3}" \
    "$ASAN_DIR/tests/stress_tests" --gtest_filter='NetworkDifferential*'
  # Flat-kernel differential under ASan: the SoA mirrors index raw CSR
  # offsets and (word,mask) bitset slices — exactly where an off-by-one
  # would read out of bounds while still passing the bit-identity check.
  SELFSTAB_STRESS_ITERS="${SELFSTAB_ASAN_STRESS_ITERS:-3}" \
    "$ASAN_DIR/tests/stress_tests" --gtest_filter='KernelDifferential.*'
  # Chaos soak under ASan: crash/rejoin churn and partition masks rebuild
  # graph edge lists and neighbor caches in place — the fault campaigns
  # exercise exactly the compaction paths ASan is here to police.
  SELFSTAB_STRESS_ITERS="${SELFSTAB_ASAN_STRESS_ITERS:-3}" \
    "$ASAN_DIR/tests/stress_tests" --gtest_filter='ChaosSoak.*'
} 2>&1 | tee "$ROOT/asan_output.txt"

# Benches append machine-readable results here (see
# bench/support/bench_json.hpp). The file name tracks the PR number, which
# equals the CHANGES.md line count (one line per landed PR): the PR 3 perf
# gates live in scale_network, the PR 4 chaos gates in soak_chaos, and the
# PR 5 kernel gates in micro_kernels.
PR_NUM="$(wc -l < "$ROOT/CHANGES.md" | tr -d ' ')"
BENCH_JSON="$ROOT/BENCH_PR${PR_NUM}.json"
: > "$BENCH_JSON"
export SELFSTAB_BENCH_JSON="$BENCH_JSON"

: > "$ROOT/bench_output.txt"
status=0
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "==> $b" | tee -a "$ROOT/bench_output.txt"
  if ! "$b" >> "$ROOT/bench_output.txt" 2>&1; then
    echo "FAILED: $b" | tee -a "$ROOT/bench_output.txt"
    status=1
  fi
done

exit "$status"
