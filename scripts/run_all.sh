#!/usr/bin/env sh
# One-shot reproduction: configure, build, run the full test suite, then
# every experiment and microbenchmark, teeing outputs next to the sources.
#
#   scripts/run_all.sh [build-dir]
#
# Exit status is non-zero if the build, any test, or any experiment's
# reproduction gate fails.
set -eu

BUILD_DIR="${1:-build}"
ROOT="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -G Ninja -S "$ROOT"
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 \
  | tee "$ROOT/test_output.txt"

: > "$ROOT/bench_output.txt"
status=0
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "==> $b" | tee -a "$ROOT/bench_output.txt"
  if ! "$b" >> "$ROOT/bench_output.txt" 2>&1; then
    echo "FAILED: $b" | tee -a "$ROOT/bench_output.txt"
    status=1
  fi
done

exit "$status"
